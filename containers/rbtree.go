package containers

// RBTree is a red-black tree set of uint64 keys — the paper's "wait-free
// balanced tree" (§VI) and the workload of Figs. 6 and 10. It is the
// classic sequential red-black tree (CLRS formulation with a per-tree
// sentinel nil node) executed under a transactional engine: on OneFile the
// rebalancing rotations of an insert or delete commit atomically and, on
// the persistent engines, crash-atomically.
type RBTree struct {
	e    Engine
	desc Ptr // [0]=root, [1]=size, [2]=sentinel nil node
}

const (
	rbRoot = 0
	rbSize = 1
	rbNil  = 2

	tnKey    = 0
	tnVal    = 1
	tnLeft   = 2
	tnRight  = 3
	tnParent = 4
	tnColor  = 5

	tnWords = 6

	colorBlack = 0
	colorRed   = 1
)

// NewRBTree attaches to (or creates in) root slot rootSlot of e.
func NewRBTree(e Engine, rootSlot int) *RBTree {
	desc := initRoot(e, rootSlot, func(tx Tx) Ptr {
		d := tx.Alloc(3)
		nilNode := tx.Alloc(tnWords) // color is already 0 = black
		tx.Store(d+rbNil, uint64(nilNode))
		tx.Store(d+rbRoot, uint64(nilNode))
		return d
	})
	return &RBTree{e: e, desc: desc}
}

// small accessors — all traffic goes through the transaction.

func (t *RBTree) nilNode(tx Tx) Ptr { return Ptr(tx.Load(t.desc + rbNil)) }
func (t *RBTree) root(tx Tx) Ptr    { return Ptr(tx.Load(t.desc + rbRoot)) }

func key(tx Tx, n Ptr) uint64         { return tx.Load(n + tnKey) }
func left(tx Tx, n Ptr) Ptr           { return Ptr(tx.Load(n + tnLeft)) }
func right(tx Tx, n Ptr) Ptr          { return Ptr(tx.Load(n + tnRight)) }
func parent(tx Tx, n Ptr) Ptr         { return Ptr(tx.Load(n + tnParent)) }
func color(tx Tx, n Ptr) uint64       { return tx.Load(n + tnColor) }
func isRed(tx Tx, n Ptr) bool         { return tx.Load(n+tnColor) == colorRed }
func setLeft(tx Tx, n, v Ptr)         { tx.Store(n+tnLeft, uint64(v)) }
func setRight(tx Tx, n, v Ptr)        { tx.Store(n+tnRight, uint64(v)) }
func setParent(tx Tx, n, v Ptr)       { tx.Store(n+tnParent, uint64(v)) }
func setColor(tx Tx, n Ptr, c uint64) { tx.Store(n+tnColor, c) }

// Add inserts k; it reports whether the set changed.
func (t *RBTree) Add(k uint64) bool {
	return t.e.Update(func(tx Tx) uint64 { return boolWord(t.AddTx(tx, k)) }) == 1
}

// AddTx inserts k as part of the caller's transaction.
func (t *RBTree) AddTx(tx Tx, k uint64) bool {
	_, existed := t.putTx(tx, k, 0, false)
	return !existed
}

// putTx inserts or updates key k with value v. When overwrite is false an
// existing key is left untouched. It returns the previous value and
// whether the key already existed.
func (t *RBTree) putTx(tx Tx, k, v uint64, overwrite bool) (prev uint64, existed bool) {
	nilN := t.nilNode(tx)
	y := nilN
	x := t.root(tx)
	for x != nilN {
		y = x
		kx := key(tx, x)
		switch {
		case k == kx:
			prev = tx.Load(x + tnVal)
			if overwrite {
				tx.Store(x+tnVal, v)
			}
			return prev, true
		case k < kx:
			x = left(tx, x)
		default:
			x = right(tx, x)
		}
	}
	z := tx.Alloc(tnWords)
	tx.Store(z+tnKey, k)
	tx.Store(z+tnVal, v)
	setLeft(tx, z, nilN)
	setRight(tx, z, nilN)
	setParent(tx, z, y)
	setColor(tx, z, colorRed)
	if y == nilN {
		tx.Store(t.desc+rbRoot, uint64(z))
	} else if k < key(tx, y) {
		setLeft(tx, y, z)
	} else {
		setRight(tx, y, z)
	}
	t.insertFixup(tx, z)
	tx.Store(t.desc+rbSize, tx.Load(t.desc+rbSize)+1)
	return 0, false
}

func (t *RBTree) rotateLeft(tx Tx, x Ptr) {
	nilN := t.nilNode(tx)
	y := right(tx, x)
	yl := left(tx, y)
	setRight(tx, x, yl)
	if yl != nilN {
		setParent(tx, yl, x)
	}
	xp := parent(tx, x)
	setParent(tx, y, xp)
	if xp == nilN {
		tx.Store(t.desc+rbRoot, uint64(y))
	} else if x == left(tx, xp) {
		setLeft(tx, xp, y)
	} else {
		setRight(tx, xp, y)
	}
	setLeft(tx, y, x)
	setParent(tx, x, y)
}

func (t *RBTree) rotateRight(tx Tx, x Ptr) {
	nilN := t.nilNode(tx)
	y := left(tx, x)
	yr := right(tx, y)
	setLeft(tx, x, yr)
	if yr != nilN {
		setParent(tx, yr, x)
	}
	xp := parent(tx, x)
	setParent(tx, y, xp)
	if xp == nilN {
		tx.Store(t.desc+rbRoot, uint64(y))
	} else if x == right(tx, xp) {
		setRight(tx, xp, y)
	} else {
		setLeft(tx, xp, y)
	}
	setRight(tx, y, x)
	setParent(tx, x, y)
}

func (t *RBTree) insertFixup(tx Tx, z Ptr) {
	for isRed(tx, parent(tx, z)) {
		zp := parent(tx, z)
		zpp := parent(tx, zp)
		if zp == left(tx, zpp) {
			u := right(tx, zpp) // uncle
			if isRed(tx, u) {
				setColor(tx, zp, colorBlack)
				setColor(tx, u, colorBlack)
				setColor(tx, zpp, colorRed)
				z = zpp
				continue
			}
			if z == right(tx, zp) {
				z = zp
				t.rotateLeft(tx, z)
				zp = parent(tx, z)
				zpp = parent(tx, zp)
			}
			setColor(tx, zp, colorBlack)
			setColor(tx, zpp, colorRed)
			t.rotateRight(tx, zpp)
			continue
		}
		u := left(tx, zpp)
		if isRed(tx, u) {
			setColor(tx, zp, colorBlack)
			setColor(tx, u, colorBlack)
			setColor(tx, zpp, colorRed)
			z = zpp
			continue
		}
		if z == left(tx, zp) {
			z = zp
			t.rotateRight(tx, z)
			zp = parent(tx, z)
			zpp = parent(tx, zp)
		}
		setColor(tx, zp, colorBlack)
		setColor(tx, zpp, colorRed)
		t.rotateLeft(tx, zpp)
	}
	setColor(tx, t.root(tx), colorBlack)
}

// findNode returns the node with key k, or the sentinel.
func (t *RBTree) findNode(tx Tx, k uint64) Ptr {
	nilN := t.nilNode(tx)
	x := t.root(tx)
	for x != nilN {
		kx := key(tx, x)
		switch {
		case k == kx:
			return x
		case k < kx:
			x = left(tx, x)
		default:
			x = right(tx, x)
		}
	}
	return nilN
}

// transplant replaces subtree u with subtree v.
func (t *RBTree) transplant(tx Tx, u, v Ptr) {
	up := parent(tx, u)
	if up == t.nilNode(tx) {
		tx.Store(t.desc+rbRoot, uint64(v))
	} else if u == left(tx, up) {
		setLeft(tx, up, v)
	} else {
		setRight(tx, up, v)
	}
	setParent(tx, v, up)
}

// Remove deletes k; it reports whether the set changed.
func (t *RBTree) Remove(k uint64) bool {
	return t.e.Update(func(tx Tx) uint64 { return boolWord(t.RemoveTx(tx, k)) }) == 1
}

// RemoveTx deletes k as part of the caller's transaction.
func (t *RBTree) RemoveTx(tx Tx, k uint64) bool {
	nilN := t.nilNode(tx)
	z := t.findNode(tx, k)
	if z == nilN {
		return false
	}
	y := z
	yWasBlack := !isRed(tx, y)
	var x Ptr
	if left(tx, z) == nilN {
		x = right(tx, z)
		t.transplant(tx, z, x)
	} else if right(tx, z) == nilN {
		x = left(tx, z)
		t.transplant(tx, z, x)
	} else {
		// y = successor of z (minimum of right subtree).
		y = right(tx, z)
		for left(tx, y) != nilN {
			y = left(tx, y)
		}
		yWasBlack = !isRed(tx, y)
		x = right(tx, y)
		if parent(tx, y) == z {
			setParent(tx, x, y) // x may be the sentinel; that is fine
		} else {
			t.transplant(tx, y, x)
			zr := right(tx, z)
			setRight(tx, y, zr)
			setParent(tx, zr, y)
		}
		t.transplant(tx, z, y)
		zl := left(tx, z)
		setLeft(tx, y, zl)
		setParent(tx, zl, y)
		setColor(tx, y, color(tx, z))
	}
	if yWasBlack {
		t.deleteFixup(tx, x)
	}
	tx.Store(t.desc+rbSize, tx.Load(t.desc+rbSize)-1)
	tx.Free(z)
	return true
}

func (t *RBTree) deleteFixup(tx Tx, x Ptr) {
	for x != t.root(tx) && !isRed(tx, x) {
		xp := parent(tx, x)
		if x == left(tx, xp) {
			w := right(tx, xp)
			if isRed(tx, w) {
				setColor(tx, w, colorBlack)
				setColor(tx, xp, colorRed)
				t.rotateLeft(tx, xp)
				xp = parent(tx, x)
				w = right(tx, xp)
			}
			if !isRed(tx, left(tx, w)) && !isRed(tx, right(tx, w)) {
				setColor(tx, w, colorRed)
				x = xp
				continue
			}
			if !isRed(tx, right(tx, w)) {
				setColor(tx, left(tx, w), colorBlack)
				setColor(tx, w, colorRed)
				t.rotateRight(tx, w)
				xp = parent(tx, x)
				w = right(tx, xp)
			}
			setColor(tx, w, color(tx, xp))
			setColor(tx, xp, colorBlack)
			setColor(tx, right(tx, w), colorBlack)
			t.rotateLeft(tx, xp)
			x = t.root(tx)
			continue
		}
		w := left(tx, xp)
		if isRed(tx, w) {
			setColor(tx, w, colorBlack)
			setColor(tx, xp, colorRed)
			t.rotateRight(tx, xp)
			xp = parent(tx, x)
			w = left(tx, xp)
		}
		if !isRed(tx, right(tx, w)) && !isRed(tx, left(tx, w)) {
			setColor(tx, w, colorRed)
			x = xp
			continue
		}
		if !isRed(tx, left(tx, w)) {
			setColor(tx, right(tx, w), colorBlack)
			setColor(tx, w, colorRed)
			t.rotateLeft(tx, w)
			xp = parent(tx, x)
			w = left(tx, xp)
		}
		setColor(tx, w, color(tx, xp))
		setColor(tx, xp, colorBlack)
		setColor(tx, left(tx, w), colorBlack)
		t.rotateRight(tx, xp)
		x = t.root(tx)
	}
	setColor(tx, x, colorBlack)
}

// Contains reports whether k is in the set (read-only transaction).
func (t *RBTree) Contains(k uint64) bool {
	return t.e.Read(func(tx Tx) uint64 { return boolWord(t.ContainsTx(tx, k)) }) == 1
}

// ContainsTx reports membership inside the caller's transaction.
func (t *RBTree) ContainsTx(tx Tx, k uint64) bool {
	return t.findNode(tx, k) != t.nilNode(tx)
}

// Len returns the number of keys.
func (t *RBTree) Len() int {
	return int(t.e.Read(func(tx Tx) uint64 { return tx.Load(t.desc + rbSize) }))
}

// Min returns the smallest key.
func (t *RBTree) Min() (uint64, bool) {
	return unpack(t.e.Read(func(tx Tx) uint64 {
		nilN := t.nilNode(tx)
		x := t.root(tx)
		if x == nilN {
			return pack(0, false)
		}
		for left(tx, x) != nilN {
			x = left(tx, x)
		}
		return pack(key(tx, x), true)
	}))
}

// Max returns the largest key.
func (t *RBTree) Max() (uint64, bool) {
	return unpack(t.e.Read(func(tx Tx) uint64 {
		nilN := t.nilNode(tx)
		x := t.root(tx)
		if x == nilN {
			return pack(0, false)
		}
		for right(tx, x) != nilN {
			x = right(tx, x)
		}
		return pack(key(tx, x), true)
	}))
}

// Keys returns up to max keys in ascending order from one consistent
// read-only transaction (a linearizable range scan).
func (t *RBTree) Keys(max int) []uint64 {
	return readSlice(t.e, func(tx Tx) []uint64 {
		var out []uint64
		nilN := t.nilNode(tx)
		var walk func(n Ptr)
		walk = func(n Ptr) {
			if n == nilN || len(out) >= max {
				return
			}
			walk(left(tx, n))
			if len(out) < max {
				out = append(out, key(tx, n))
			}
			walk(right(tx, n))
		}
		walk(t.root(tx))
		return out
	})
}

// CheckInvariants verifies, in one read-only transaction, the red-black
// invariants: the root is black, no red node has a red child, every path
// carries the same number of black nodes, keys are ordered, and the stored
// size matches the node count. Tests rely on it.
func (t *RBTree) CheckInvariants() error {
	var err error
	t.e.Read(func(tx Tx) uint64 {
		err = t.checkTx(tx)
		return 0
	})
	return err
}

func (t *RBTree) checkTx(tx Tx) error {
	nilN := t.nilNode(tx)
	root := t.root(tx)
	if root != nilN && isRed(tx, root) {
		return errRedRoot
	}
	count := uint64(0)
	var walk func(n Ptr, lo, hi uint64) (blackHeight int, err error)
	walk = func(n Ptr, lo, hi uint64) (int, error) {
		if n == nilN {
			return 1, nil
		}
		count++
		k := key(tx, n)
		if k < lo || k > hi {
			return 0, errOutOfOrder
		}
		if isRed(tx, n) && (isRed(tx, left(tx, n)) || isRed(tx, right(tx, n))) {
			return 0, errRedRed
		}
		hiL := k
		if k > 0 {
			hiL = k - 1
		}
		bl, err := walk(left(tx, n), lo, hiL)
		if err != nil {
			return 0, err
		}
		br, err := walk(right(tx, n), k+1, hi)
		if err != nil {
			return 0, err
		}
		if bl != br {
			return 0, errBlackHeight
		}
		if !isRed(tx, n) {
			bl++
		}
		return bl, nil
	}
	_, err := walk(root, 0, ^uint64(0))
	if err != nil {
		return err
	}
	if count != tx.Load(t.desc+rbSize) {
		return errSizeMismatch
	}
	return nil
}

// Red-black invariant violations reported by CheckInvariants.
var (
	errRedRoot      = errored("rbtree: root is red")
	errRedRed       = errored("rbtree: red node with red child")
	errBlackHeight  = errored("rbtree: unequal black heights")
	errOutOfOrder   = errored("rbtree: keys out of order")
	errSizeMismatch = errored("rbtree: stored size does not match node count")
)

type errored string

func (e errored) Error() string { return string(e) }
