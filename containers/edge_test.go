package containers

import (
	"testing"

	"onefile/internal/core"
	"onefile/internal/tm"
)

func TestHashSetBucketCountIsCapped(t *testing.T) {
	e := core.NewLF(
		tm.WithHeapWords(1<<19),
		tm.WithMaxThreads(8),
		tm.WithMaxStores(1<<15),
	)
	h := NewHashSet(e, 0)
	// Push far past the last growth trigger (4·hsMaxBuckets keys).
	for i := uint64(0); i < 4*hsMaxBuckets+500; i++ {
		h.Add(i)
	}
	if h.Buckets() != hsMaxBuckets {
		t.Fatalf("buckets = %d, want capped at %d", h.Buckets(), hsMaxBuckets)
	}
	// Everything still findable with long chains.
	for i := uint64(0); i < 4*hsMaxBuckets+500; i += 997 {
		if !h.Contains(i) {
			t.Fatalf("lost key %d after cap", i)
		}
	}
}

func TestQueueInterleavedEnqueueDequeue(t *testing.T) {
	e := core.NewWF(testOpts...)
	q := NewQueue(e, 0)
	// Repeatedly drain to empty and refill: exercises the tail=0 reset.
	for round := 0; round < 20; round++ {
		for i := uint64(0); i < 5; i++ {
			q.Enqueue(round2val(round, i))
		}
		for i := uint64(0); i < 5; i++ {
			v, ok := q.Dequeue()
			if !ok || v != round2val(round, i) {
				t.Fatalf("round %d: got (%d,%v)", round, v, ok)
			}
		}
		if _, ok := q.Dequeue(); ok {
			t.Fatalf("round %d: queue not empty", round)
		}
	}
}

func round2val(r int, i uint64) uint64 { return uint64(r)<<16 | i }

func TestStackInterleaved(t *testing.T) {
	e := core.NewLF(testOpts...)
	s := NewStack(e, 0)
	s.Push(1)
	s.Push(2)
	if v, _ := s.Pop(); v != 2 {
		t.Fatal("LIFO broken")
	}
	s.Push(3)
	if v, _ := s.Pop(); v != 3 {
		t.Fatal("LIFO broken after interleave")
	}
	if v, _ := s.Pop(); v != 1 {
		t.Fatal("bottom element lost")
	}
}

func TestListSetKeysRespectsMax(t *testing.T) {
	e := core.NewLF(testOpts...)
	s := NewListSet(e, 0)
	for i := uint64(0); i < 50; i++ {
		s.Add(i)
	}
	if got := s.Keys(7); len(got) != 7 {
		t.Fatalf("Keys(7) returned %d", len(got))
	}
	if got := s.Keys(100); len(got) != 50 {
		t.Fatalf("Keys(100) returned %d", len(got))
	}
}

func TestRBTreeKeysRespectsMax(t *testing.T) {
	e := core.NewLF(testOpts...)
	tr := NewRBTree(e, 0)
	for i := uint64(0); i < 50; i++ {
		tr.Add(i)
	}
	got := tr.Keys(5)
	if len(got) != 5 {
		t.Fatalf("Keys(5) returned %d", len(got))
	}
	for i, k := range got {
		if k != uint64(i) {
			t.Fatalf("Keys(5) = %v, want smallest five", got)
		}
	}
}

func TestContainersShareOneEngine(t *testing.T) {
	// All six containers coexist on one heap, in distinct root slots, and
	// a single transaction can touch all of them atomically.
	e := core.NewWF(testOpts...)
	q := NewQueue(e, 0)
	st := NewStack(e, 1)
	ls := NewListSet(e, 2)
	hs := NewHashSet(e, 3)
	tr := NewRBTree(e, 4)
	mp := NewTreeMap(e, 5)
	e.Update(func(tx Tx) uint64 {
		q.EnqueueTx(tx, 1)
		st.PushTx(tx, 2)
		ls.AddTx(tx, 3)
		hs.AddTx(tx, 4)
		tr.AddTx(tx, 5)
		mp.PutTx(tx, 6, 60)
		return 0
	})
	if q.Len() != 1 || st.Len() != 1 || ls.Len() != 1 || hs.Len() != 1 || tr.Len() != 1 || mp.Len() != 1 {
		t.Fatal("cross-container transaction incomplete")
	}
	if !ls.Contains(3) || !hs.Contains(4) || !tr.Contains(5) {
		t.Fatal("keys missing")
	}
	if v, ok := mp.Get(6); !ok || v != 60 {
		t.Fatal("map entry missing")
	}
}

func TestAttachToExistingStructure(t *testing.T) {
	// A second container object on the same root slot sees the same data
	// (the attach-or-create constructor contract).
	e := core.NewLF(testOpts...)
	q1 := NewQueue(e, 9)
	q1.Enqueue(42)
	q2 := NewQueue(e, 9)
	if v, ok := q2.Dequeue(); !ok || v != 42 {
		t.Fatalf("second handle got (%d,%v)", v, ok)
	}
	if q1.Len() != 0 {
		t.Fatal("handles diverged")
	}
}
