package containers

// Stack is an unbounded LIFO stack of uint64 values — the structure the
// paper uses to illustrate the wait-free algorithm's operation (§III-E,
// Fig. 1).
type Stack struct {
	e    Engine
	desc Ptr // [0]=top, [1]=length

	pushHint smallHint
	popHint  smallHint
}

const (
	stTop = 0
	stLen = 1

	snVal  = 0
	snNext = 1
)

// NewStack attaches to (or creates in) root slot rootSlot of e.
func NewStack(e Engine, rootSlot int) *Stack {
	desc := initRoot(e, rootSlot, func(tx Tx) Ptr { return tx.Alloc(2) })
	return &Stack{e: e, desc: desc}
}

// Push adds v in its own transaction. Like Queue.Enqueue, the fast-path
// probe converges to the full path (a push always allocates).
func (s *Stack) Push(v uint64) {
	updateSmall(s.e, &s.pushHint, func(tx Tx) uint64 {
		s.PushTx(tx, v)
		return 0
	})
}

// PushTx adds v as part of the caller's transaction.
func (s *Stack) PushTx(tx Tx, v uint64) {
	n := tx.Alloc(2)
	tx.Store(n+snVal, v)
	tx.Store(n+snNext, tx.Load(s.desc+stTop))
	tx.Store(s.desc+stTop, uint64(n))
	tx.Store(s.desc+stLen, tx.Load(s.desc+stLen)+1)
}

// Pop removes and returns the newest value; ok is false when empty.
func (s *Stack) Pop() (v uint64, ok bool) {
	return unpack(updateSmall(s.e, &s.popHint, func(tx Tx) uint64 {
		v, ok := s.PopTx(tx)
		return pack(v, ok)
	}))
}

// PopTx removes the newest value as part of the caller's transaction.
func (s *Stack) PopTx(tx Tx) (v uint64, ok bool) {
	top := Ptr(tx.Load(s.desc + stTop))
	if top == 0 {
		return 0, false
	}
	v = tx.Load(top + snVal)
	tx.Store(s.desc+stTop, tx.Load(top+snNext))
	tx.Store(s.desc+stLen, tx.Load(s.desc+stLen)-1)
	tx.Free(top)
	return v, true
}

// Len returns the current length.
func (s *Stack) Len() int {
	return int(s.e.Read(func(tx Tx) uint64 { return tx.Load(s.desc + stLen) }))
}

// Peek returns the newest value without removing it.
func (s *Stack) Peek() (v uint64, ok bool) {
	return unpack(s.e.Read(func(tx Tx) uint64 {
		top := Ptr(tx.Load(s.desc + stTop))
		if top == 0 {
			return pack(0, false)
		}
		return pack(tx.Load(top+snVal), true)
	}))
}
