package containers

import (
	"math/rand"
	"sync"
	"testing"

	"onefile/internal/core"
	"onefile/internal/pmem"
)

func TestTreeMapBasics(t *testing.T) {
	forEach(t, func(t *testing.T, e Engine) {
		m := NewTreeMap(e, 11)
		if _, ok := m.Get(1); ok {
			t.Fatal("empty map hit")
		}
		if _, existed := m.Put(1, 100); existed {
			t.Fatal("fresh put reported existing")
		}
		if v, ok := m.Get(1); !ok || v != 100 {
			t.Fatalf("Get = %d,%v", v, ok)
		}
		if prev, existed := m.Put(1, 200); !existed || prev != 100 {
			t.Fatalf("overwrite = %d,%v", prev, existed)
		}
		if v, _ := m.Get(1); v != 200 {
			t.Fatalf("overwritten value = %d", v)
		}
		if prev, existed := m.Delete(1); !existed || prev != 200 {
			t.Fatalf("Delete = %d,%v", prev, existed)
		}
		if _, existed := m.Delete(1); existed {
			t.Fatal("double delete succeeded")
		}
		if m.Len() != 0 {
			t.Fatalf("Len = %d", m.Len())
		}
	})
}

func TestTreeMapRandomModel(t *testing.T) {
	forEach(t, func(t *testing.T, e Engine) {
		m := NewTreeMap(e, 11)
		model := map[uint64]uint64{}
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 3000; i++ {
			k := uint64(rng.Intn(200))
			switch rng.Intn(3) {
			case 0:
				v := uint64(rng.Intn(1000))
				prev, existed := m.Put(k, v)
				mv, mok := model[k]
				if existed != mok || (mok && prev != mv) {
					t.Fatalf("step %d: Put(%d) = (%d,%v), model (%d,%v)", i, k, prev, existed, mv, mok)
				}
				model[k] = v
			case 1:
				prev, existed := m.Delete(k)
				mv, mok := model[k]
				if existed != mok || (mok && prev != mv) {
					t.Fatalf("step %d: Delete(%d) disagrees", i, k)
				}
				delete(model, k)
			default:
				v, ok := m.Get(k)
				mv, mok := model[k]
				if ok != mok || (mok && v != mv) {
					t.Fatalf("step %d: Get(%d) disagrees", i, k)
				}
			}
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if m.Len() != len(model) {
			t.Fatalf("Len = %d, model %d", m.Len(), len(model))
		}
	})
}

func TestTreeMapRange(t *testing.T) {
	e := core.NewWF(testOpts...)
	m := NewTreeMap(e, 11)
	for k := uint64(0); k < 100; k += 2 {
		m.Put(k, k*10)
	}
	got := m.Range(10, 20, 100)
	want := []Entry{{10, 100}, {12, 120}, {14, 140}, {16, 160}, {18, 180}, {20, 200}}
	if len(got) != len(want) {
		t.Fatalf("Range = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if r := m.Range(51, 53, 100); len(r) != 1 || r[0].Key != 52 {
		t.Fatalf("Range(51,53) = %v", r)
	}
	if r := m.Range(200, 300, 100); len(r) != 0 {
		t.Fatalf("out-of-range scan = %v", r)
	}
}

// TestTreeMapAtomicRangeUnderWrites: a range scan must never observe a
// partially applied multi-key transaction.
func TestTreeMapAtomicRangeUnderWrites(t *testing.T) {
	e := core.NewLF(testOpts...)
	m := NewTreeMap(e, 11)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); i < 1500; i++ {
			// Write three keys atomically with the same generation.
			e.Update(func(tx Tx) uint64 {
				m.PutTx(tx, 1, i)
				m.PutTx(tx, 2, i)
				m.PutTx(tx, 3, i)
				return 0
			})
		}
		close(stop)
	}()
	for {
		select {
		case <-stop:
			wg.Wait()
			return
		default:
		}
		es := m.Range(1, 3, 10)
		if len(es) == 0 {
			continue
		}
		for i := 1; i < len(es); i++ {
			if es[i].Val != es[0].Val {
				t.Fatalf("torn range scan: %v", es)
			}
		}
	}
}

func TestTreeMapSurvivesCrash(t *testing.T) {
	dev, err := pmem.New(core.DeviceConfig(pmem.RelaxedMode, 13, testOpts...))
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewPersistentLF(dev, false, testOpts...)
	if err != nil {
		t.Fatal(err)
	}
	m := NewTreeMap(e, 11)
	for k := uint64(0); k < 200; k++ {
		m.Put(k, k+1000)
	}
	dev.Crash()
	r, err := core.NewPersistentLF(dev, true, testOpts...)
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewTreeMap(r, 11)
	if m2.Len() != 200 {
		t.Fatalf("recovered Len = %d", m2.Len())
	}
	for k := uint64(0); k < 200; k++ {
		if v, ok := m2.Get(k); !ok || v != k+1000 {
			t.Fatalf("recovered Get(%d) = %d,%v", k, v, ok)
		}
	}
	if err := m2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
