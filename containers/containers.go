// Package containers provides the transactional data structures the paper
// builds on OneFile (§V, §VI): a queue, a stack, a sorted linked-list set,
// a resizable hash set and a red-black tree set. Every container is written
// once against the engine-neutral tm interface, so the same code runs —
// with the progress and durability properties of the chosen engine — on all
// four OneFile variants and on every baseline PTM/STM in this repository.
// On a wait-free engine these are wait-free containers; on a persistent
// engine their state survives crashes.
//
// Each container anchors itself in one of the engine's root slots. The
// constructors are attach-or-create: if the slot already holds a structure
// (for example after re-attaching a persistent engine following a crash),
// the existing structure is used.
//
// Every operation exists in two forms: a top-level method that runs its own
// transaction, and a *Tx method that participates in a caller-provided
// transaction, so multiple operations — even on different containers — can
// be composed atomically (the paper's two-queue transfer scenario, §V-B).
//
// Values and keys are uint64 below 2^63; the top bit is reserved to encode
// the ok flag of operations executed inside engine transactions.
package containers

import (
	"sync"
	"sync/atomic"

	"onefile/internal/tm"
)

// Engine is the transactional-memory engine containers run on. It is the
// engine-neutral interface implemented by every STM/PTM in this repository
// (re-exported at the module root as onefile.Engine).
type Engine = tm.Engine

// Tx is a transaction handle passed to the *Tx composition methods.
type Tx = tm.Tx

// Ptr is a transactional heap pointer.
type Ptr = tm.Ptr

// MaxValue is the largest storable value or key: the top bit is reserved.
const MaxValue = 1<<63 - 1

const okBit = uint64(1) << 63

// pack encodes (v, ok) into the single word an engine transaction returns.
func pack(v uint64, ok bool) uint64 {
	if ok {
		return v | okBit
	}
	return v
}

// unpack decodes a pack()ed word.
func unpack(w uint64) (uint64, bool) { return w &^ okBit, w&okBit != 0 }

func boolWord(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// readSlice runs a read-only transaction whose result is a slice. Engine
// bodies may execute multiple times — and, on the wait-free engines, on
// helper goroutines — so a body must not simply write captured variables:
// the last writer is not necessarily the execution that committed. Instead
// each execution deposits its result under a unique id (mutex-protected)
// and the engine's scalar return channel — which does carry the winning
// execution's value — selects which deposit to keep.
func readSlice(e Engine, body func(tx Tx) []uint64) []uint64 {
	var (
		mu      sync.Mutex
		ctr     uint64
		deposit = map[uint64][]uint64{}
	)
	win := e.Read(func(tx Tx) uint64 {
		mu.Lock()
		ctr++
		id := ctr
		mu.Unlock()
		local := body(tx)
		mu.Lock()
		deposit[id] = local
		mu.Unlock()
		return id
	})
	mu.Lock()
	defer mu.Unlock()
	return deposit[win]
}

// smallGiveUp is how many consecutive SmallIneligible outcomes an operation
// accumulates before its smallHint stops probing the fast path. Contended
// outcomes do NOT count — contention proves the body is small enough, it
// just lost a race — and any other outcome resets the streak.
const smallGiveUp = 4

// smallHint is per-operation adaptive state for fast-path probing: each
// container operation that can fit the small-transaction fast path (at most
// two stored words, no Alloc/Free) carries one. Operations whose bodies
// converge to ineligible (e.g. a queue Enqueue, which always allocates)
// stop probing after smallGiveUp misses and pay nothing further.
type smallHint struct {
	miss atomic.Uint32
}

// updateSmall runs fn through the engine's small-transaction fast path when
// the engine has one and the hint still considers the operation promising;
// otherwise it is a plain e.Update. Outcomes feed back into the hint.
func updateSmall(e Engine, h *smallHint, fn func(Tx) uint64) uint64 {
	if h.miss.Load() < smallGiveUp {
		if s, ok := e.(tm.SmallUpdater); ok {
			res, out := s.UpdateSmall(fn)
			if out == tm.SmallIneligible {
				h.miss.Add(1)
			} else if h.miss.Load() != 0 {
				h.miss.Store(0)
			}
			return res
		}
		h.miss.Store(smallGiveUp) // engine has no fast path; stop asking
	}
	return e.Update(fn)
}

// initRoot ensures the root slot holds a descriptor, creating it with mk
// inside a transaction if empty, and returns the descriptor pointer.
func initRoot(e Engine, slot int, mk func(tx Tx) Ptr) Ptr {
	return Ptr(e.Update(func(tx Tx) uint64 {
		r := tm.Root(slot)
		if d := tx.Load(r); d != 0 {
			return d
		}
		d := mk(tx)
		tx.Store(r, uint64(d))
		return uint64(d)
	}))
}
