package containers

import "onefile/internal/tm"

// Batched entry points. Each value is submitted as its own operation to the
// engine's group-commit combiner (tm.Batch), so on the OneFile engines the
// whole call — and any concurrent submitters' operations — merges into as
// few physical transactions as the batch bound allows: one commit pipeline
// and, on the persistent engines, one fence round per merged batch instead
// of per element. On an engine without a combiner each element is an
// ordinary solo transaction, so the methods are portable (but then carry no
// cross-element atomicity, exactly like calling the per-element methods in
// a loop).
//
// Submitting per element (rather than one big op doing the whole slice)
// keeps each operation's write-set small — a combined transaction that
// overflows falls back to per-op solo commits, never to a failure — and
// lets independent callers' elements interleave into shared batches.

// batchErr returns the first operation error in res, if any.
func batchErr(res []tm.BatchResult) error {
	for _, r := range res {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}

// EnqueueAll appends every value of vs, in order, through the engine's
// group-commit combiner.
func (q *Queue) EnqueueAll(vs []uint64) error {
	fns := make([]func(Tx) uint64, len(vs))
	for i, v := range vs {
		fns[i] = func(tx Tx) uint64 { q.EnqueueTx(tx, v); return 0 }
	}
	return batchErr(tm.Batch(q.e, fns))
}

// DequeueAll removes up to n values through the combiner and returns them
// oldest-first. Fewer than n are returned if the queue runs empty.
func (q *Queue) DequeueAll(n int) ([]uint64, error) {
	fns := make([]func(Tx) uint64, n)
	for i := range fns {
		fns[i] = func(tx Tx) uint64 {
			v, ok := q.DequeueTx(tx)
			return pack(v, ok)
		}
	}
	res := tm.Batch(q.e, fns)
	if err := batchErr(res); err != nil {
		return nil, err
	}
	out := make([]uint64, 0, n)
	for _, r := range res {
		if v, ok := unpack(r.Val); ok {
			out = append(out, v)
		}
	}
	return out, nil
}

// PushAll pushes every value of vs, in order (vs[len-1] ends up on top),
// through the engine's group-commit combiner.
func (s *Stack) PushAll(vs []uint64) error {
	fns := make([]func(Tx) uint64, len(vs))
	for i, v := range vs {
		fns[i] = func(tx Tx) uint64 { s.PushTx(tx, v); return 0 }
	}
	return batchErr(tm.Batch(s.e, fns))
}

// AddAll inserts every key of ks through the engine's group-commit combiner
// and returns how many were newly added (duplicates — within ks or with the
// existing set — count once).
func (h *HashSet) AddAll(ks []uint64) (int, error) {
	fns := make([]func(Tx) uint64, len(ks))
	for i, k := range ks {
		fns[i] = func(tx Tx) uint64 { return boolWord(h.AddTx(tx, k)) }
	}
	res := tm.Batch(h.e, fns)
	if err := batchErr(res); err != nil {
		return 0, err
	}
	added := 0
	for _, r := range res {
		added += int(r.Val)
	}
	return added, nil
}
