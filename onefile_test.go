package onefile_test

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"onefile"
	"onefile/containers"
)

func small() []onefile.Option {
	return []onefile.Option{
		onefile.WithHeapWords(1 << 15),
		onefile.WithMaxThreads(16),
		onefile.WithMaxStores(1 << 10),
	}
}

func TestPublicVolatileEngines(t *testing.T) {
	for _, e := range []onefile.Engine{
		onefile.NewLockFree(small()...),
		onefile.NewWaitFree(small()...),
	} {
		t.Run(e.Name(), func(t *testing.T) {
			cnt := onefile.Root(0)
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 100; i++ {
						e.Update(func(tx onefile.Tx) uint64 {
							tx.Store(cnt, tx.Load(cnt)+1)
							return 0
						})
					}
				}()
			}
			wg.Wait()
			if got := e.Read(func(tx onefile.Tx) uint64 { return tx.Load(cnt) }); got != 400 {
				t.Fatalf("counter = %d", got)
			}
		})
	}
}

func TestPublicPTMCrashCycle(t *testing.T) {
	nvm, err := onefile.NewNVM(onefile.Relaxed, 42, small()...)
	if err != nil {
		t.Fatal(err)
	}
	e, err := nvm.OpenWaitFree(false)
	if err != nil {
		t.Fatal(err)
	}
	set := containers.NewHashSet(e, 0)
	for i := uint64(0); i < 100; i++ {
		set.Add(i)
	}
	nvm.Crash()
	r, err := nvm.OpenWaitFree(true)
	if err != nil {
		t.Fatal(err)
	}
	set2 := containers.NewHashSet(r, 0)
	if set2.Len() != 100 {
		t.Fatalf("recovered set has %d keys", set2.Len())
	}
	if pwb, _ := nvm.PersistStats(); pwb == 0 {
		t.Fatal("no pwbs recorded")
	}
}

func Example() {
	e := onefile.NewWaitFree()
	balance := onefile.Root(0)
	e.Update(func(tx onefile.Tx) uint64 {
		tx.Store(balance, 100)
		return 0
	})
	got := e.Read(func(tx onefile.Tx) uint64 { return tx.Load(balance) })
	fmt.Println(got)
	// Output: 100
}

func TestFileNVMReopenCycle(t *testing.T) {
	// Build a heap on a real device file, Close it, reopen in a "new
	// process" (a second NVM on the same path), and verify the data came
	// back through the file — no snapshot choreography involved.
	path := filepath.Join(t.TempDir(), "heap.img")
	nvm, existed, err := onefile.NewFileNVM(path, onefile.Strict, 1, small()...)
	if err != nil {
		t.Skipf("file-backed NVM unavailable: %v", err)
	}
	if existed {
		t.Fatal("fresh path reported an existing device")
	}
	e, err := nvm.OpenLockFree(false)
	if err != nil {
		t.Fatal(err)
	}
	q := containers.NewQueue(e, 0)
	for i := uint64(1); i <= 25; i++ {
		q.Enqueue(i)
	}
	if err := nvm.Close(); err != nil {
		t.Fatal(err)
	}

	nvm2, existed, err := onefile.NewFileNVM(path, onefile.Strict, 1, small()...)
	if err != nil {
		t.Fatal(err)
	}
	if !existed {
		t.Fatal("existing device file not recognised")
	}
	e2, err := nvm2.OpenLockFree(existed)
	if err != nil {
		t.Fatal(err)
	}
	q2 := containers.NewQueue(e2, 0)
	if q2.Len() != 25 {
		t.Fatalf("recovered queue length = %d", q2.Len())
	}
	if v, ok := q2.Dequeue(); !ok || v != 1 {
		t.Fatalf("recovered head = %d,%v", v, ok)
	}
	if err := nvm2.Close(); err != nil {
		t.Fatal(err)
	}

	// Mismatched sizing options must be rejected, not misread.
	if _, _, err := onefile.NewFileNVM(path, onefile.Strict, 1,
		onefile.WithHeapWords(1<<16), onefile.WithMaxThreads(16), onefile.WithMaxStores(1<<10)); err == nil {
		t.Fatal("reopen with mismatched options succeeded")
	}
}

func TestSnapshotAcrossProcessRestart(t *testing.T) {
	// Build a heap, snapshot it, restore it into a brand-new NVM (as a
	// fresh process would), and verify the data and further updates.
	nvm, err := onefile.NewNVM(onefile.Strict, 1, small()...)
	if err != nil {
		t.Fatal(err)
	}
	e, err := nvm.OpenLockFree(false)
	if err != nil {
		t.Fatal(err)
	}
	q := containers.NewQueue(e, 0)
	for i := uint64(1); i <= 25; i++ {
		q.Enqueue(i)
	}
	var file bytes.Buffer
	if err := nvm.SaveSnapshot(&file); err != nil {
		t.Fatal(err)
	}

	nvm2, err := onefile.NewNVM(onefile.Strict, 2, small()...)
	if err != nil {
		t.Fatal(err)
	}
	if err := nvm2.LoadSnapshot(&file); err != nil {
		t.Fatal(err)
	}
	e2, err := nvm2.OpenLockFree(true)
	if err != nil {
		t.Fatal(err)
	}
	q2 := containers.NewQueue(e2, 0)
	if q2.Len() != 25 {
		t.Fatalf("restored queue length = %d", q2.Len())
	}
	if v, ok := q2.Dequeue(); !ok || v != 1 {
		t.Fatalf("restored head = %d,%v", v, ok)
	}
	q2.Enqueue(99)
	if q2.Len() != 25 {
		t.Fatalf("restored engine not writable: len=%d", q2.Len())
	}
}
