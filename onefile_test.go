package onefile_test

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"onefile"
	"onefile/containers"
)

func small() []onefile.Option {
	return []onefile.Option{
		onefile.WithHeapWords(1 << 15),
		onefile.WithMaxThreads(16),
		onefile.WithMaxStores(1 << 10),
	}
}

func TestPublicVolatileEngines(t *testing.T) {
	for _, e := range []onefile.Engine{
		onefile.NewLockFree(small()...),
		onefile.NewWaitFree(small()...),
	} {
		t.Run(e.Name(), func(t *testing.T) {
			cnt := onefile.Root(0)
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 100; i++ {
						e.Update(func(tx onefile.Tx) uint64 {
							tx.Store(cnt, tx.Load(cnt)+1)
							return 0
						})
					}
				}()
			}
			wg.Wait()
			if got := e.Read(func(tx onefile.Tx) uint64 { return tx.Load(cnt) }); got != 400 {
				t.Fatalf("counter = %d", got)
			}
		})
	}
}

func TestPublicPTMCrashCycle(t *testing.T) {
	nvm, err := onefile.NewNVM(onefile.Relaxed, 42, small()...)
	if err != nil {
		t.Fatal(err)
	}
	e, err := nvm.OpenWaitFree(false)
	if err != nil {
		t.Fatal(err)
	}
	set := containers.NewHashSet(e, 0)
	for i := uint64(0); i < 100; i++ {
		set.Add(i)
	}
	nvm.Crash()
	r, err := nvm.OpenWaitFree(true)
	if err != nil {
		t.Fatal(err)
	}
	set2 := containers.NewHashSet(r, 0)
	if set2.Len() != 100 {
		t.Fatalf("recovered set has %d keys", set2.Len())
	}
	if pwb, _ := nvm.PersistStats(); pwb == 0 {
		t.Fatal("no pwbs recorded")
	}
}

func Example() {
	e := onefile.NewWaitFree()
	balance := onefile.Root(0)
	e.Update(func(tx onefile.Tx) uint64 {
		tx.Store(balance, 100)
		return 0
	})
	got := e.Read(func(tx onefile.Tx) uint64 { return tx.Load(balance) })
	fmt.Println(got)
	// Output: 100
}

func TestFileNVMReopenCycle(t *testing.T) {
	// Build a heap on a real device file, Close it, reopen in a "new
	// process" (a second NVM on the same path), and verify the data came
	// back through the file — no snapshot choreography involved.
	path := filepath.Join(t.TempDir(), "heap.img")
	nvm, existed, err := onefile.NewFileNVM(path, onefile.Strict, 1, small()...)
	if err != nil {
		t.Skipf("file-backed NVM unavailable: %v", err)
	}
	if existed {
		t.Fatal("fresh path reported an existing device")
	}
	e, err := nvm.OpenLockFree(false)
	if err != nil {
		t.Fatal(err)
	}
	q := containers.NewQueue(e, 0)
	for i := uint64(1); i <= 25; i++ {
		q.Enqueue(i)
	}
	if err := nvm.Close(); err != nil {
		t.Fatal(err)
	}

	nvm2, existed, err := onefile.NewFileNVM(path, onefile.Strict, 1, small()...)
	if err != nil {
		t.Fatal(err)
	}
	if !existed {
		t.Fatal("existing device file not recognised")
	}
	e2, err := nvm2.OpenLockFree(existed)
	if err != nil {
		t.Fatal(err)
	}
	q2 := containers.NewQueue(e2, 0)
	if q2.Len() != 25 {
		t.Fatalf("recovered queue length = %d", q2.Len())
	}
	if v, ok := q2.Dequeue(); !ok || v != 1 {
		t.Fatalf("recovered head = %d,%v", v, ok)
	}
	if err := nvm2.Close(); err != nil {
		t.Fatal(err)
	}

	// Mismatched sizing options must be rejected, not misread.
	if _, _, err := onefile.NewFileNVM(path, onefile.Strict, 1,
		onefile.WithHeapWords(1<<16), onefile.WithMaxThreads(16), onefile.WithMaxStores(1<<10)); err == nil {
		t.Fatal("reopen with mismatched options succeeded")
	}
}

func TestSnapshotAcrossProcessRestart(t *testing.T) {
	// Build a heap, snapshot it, restore it into a brand-new NVM (as a
	// fresh process would), and verify the data and further updates.
	nvm, err := onefile.NewNVM(onefile.Strict, 1, small()...)
	if err != nil {
		t.Fatal(err)
	}
	e, err := nvm.OpenLockFree(false)
	if err != nil {
		t.Fatal(err)
	}
	q := containers.NewQueue(e, 0)
	for i := uint64(1); i <= 25; i++ {
		q.Enqueue(i)
	}
	var file bytes.Buffer
	if err := nvm.SaveSnapshot(&file); err != nil {
		t.Fatal(err)
	}

	nvm2, err := onefile.NewNVM(onefile.Strict, 2, small()...)
	if err != nil {
		t.Fatal(err)
	}
	if err := nvm2.LoadSnapshot(&file); err != nil {
		t.Fatal(err)
	}
	e2, err := nvm2.OpenLockFree(true)
	if err != nil {
		t.Fatal(err)
	}
	q2 := containers.NewQueue(e2, 0)
	if q2.Len() != 25 {
		t.Fatalf("restored queue length = %d", q2.Len())
	}
	if v, ok := q2.Dequeue(); !ok || v != 1 {
		t.Fatalf("restored head = %d,%v", v, ok)
	}
	q2.Enqueue(99)
	if q2.Len() != 25 {
		t.Fatalf("restored engine not writable: len=%d", q2.Len())
	}
}

func TestPublicShardedVolatile(t *testing.T) {
	st, err := onefile.NewShardedTM(4, false, nil, small()...)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Shards() != 4 {
		t.Fatalf("Shards() = %d", st.Shards())
	}
	// Single-shard routing: per-key counters on the key's home engine.
	bal := onefile.Root(0)
	keys := []uint64{3, 1000, 77777, 1 << 40}
	for _, k := range keys {
		st.Update(k, func(tx onefile.Tx) uint64 {
			tx.Store(bal, tx.Load(bal)+100)
			return 0
		})
	}
	// Cross-shard: move 40 between two keys on (very likely) different
	// shards, atomically.
	a, b := keys[0], keys[3]
	sa, sb := st.ShardFor(a), st.ShardFor(b)
	if sa == sb {
		t.Skipf("hash placed probe keys on one shard (%d)", sa)
	}
	res, err := st.UpdateCross([]uint64{a, b}, func(m onefile.MultiTx) uint64 {
		m.Store(sa, bal, m.Load(sa, bal)-40)
		m.Store(sb, bal, m.Load(sb, bal)+40)
		return m.Load(sb, bal)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res != 140 {
		t.Fatalf("cross result = %d, want 140", res)
	}
	if got := st.Read(a, func(tx onefile.Tx) uint64 { return tx.Load(bal) }); got != 60 {
		t.Fatalf("source balance = %d, want 60", got)
	}
	if cs := st.CrossStats(); cs.Cross != 1 {
		t.Fatalf("CrossStats.Cross = %d, want 1", cs.Cross)
	}
	var _ onefile.Sharded = st // the concrete store satisfies the interface
}

func TestPublicShardedFilesReopen(t *testing.T) {
	dir := t.TempDir()
	part := onefile.RangePartitioner(1000)
	st, existed, err := onefile.OpenShardedTM(dir, 2, false, onefile.Strict, 1, part, small()...)
	if err != nil {
		t.Skipf("file-backed sharded store unavailable: %v", err)
	}
	if existed {
		t.Fatal("fresh dir reported an existing store")
	}
	pot := onefile.Root(0)
	if _, err := st.UpdateCross([]uint64{5, 2000}, func(m onefile.MultiTx) uint64 {
		m.Store(0, pot, 70)
		m.Store(1, pot, 30)
		return 0
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, existed, err := onefile.OpenShardedTM(dir, 2, false, onefile.Strict, 1, part, small()...)
	if err != nil {
		t.Fatal(err)
	}
	if !existed {
		t.Fatal("existing store not recognised")
	}
	defer st2.Close()
	sum := st2.Read(5, func(tx onefile.Tx) uint64 { return tx.Load(pot) }) +
		st2.Read(2000, func(tx onefile.Tx) uint64 { return tx.Load(pot) })
	if sum != 100 {
		t.Fatalf("recovered pots sum to %d, want 100", sum)
	}
}

func TestPublicShardedMetrics(t *testing.T) {
	st, err := onefile.NewShardedTM(2, false, onefile.HashPartitioner(2), small()...)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	reg := onefile.NewMetricsRegistry()
	if ms := onefile.RegisterShardedMetrics(reg, st); len(ms) != 2 {
		t.Fatalf("registered %d shard metric handles, want 2", len(ms))
	}
	st.Update(1, func(tx onefile.Tx) uint64 {
		tx.Store(onefile.Root(0), 1)
		return 0
	})
}
