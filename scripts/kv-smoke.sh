#!/usr/bin/env bash
# KV service smoke test: build cmd/onefile-kv, start it file-backed on
# tmpfs, drive a load burst over real sockets through the bench harness
# (onefile-bench -fig kv -kv-addr), assert the service and engine metric
# families moved, SIGTERM for a graceful drain, then reopen the same file
# and verify the loaded keys survived the shutdown. Run from the
# repository root; CI's kv-smoke job runs exactly this script.
set -euo pipefail

addr="${1:-127.0.0.1:16380}"
maddr="${2:-127.0.0.1:16381}"
keys=2048

dir=$(mktemp -d "${TMPDIR:-/dev/shm}/kv-smoke.XXXXXX" 2>/dev/null || mktemp -d)
file="$dir/kv.img"
log="$dir/server.log"
pid=""

cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$dir"
}
trap cleanup EXIT

fail() { echo "kv-smoke: $1" >&2; [ -f "$log" ] && sed 's/^/  server: /' "$log" >&2; exit 1; }

go build -o "$dir/onefile-kv" ./cmd/onefile-kv
go build -o "$dir/onefile-bench" ./cmd/onefile-bench

start_server() {
  "$dir/onefile-kv" -addr "$addr" -metrics "$maddr" -file "$file" \
    -heap $((1 << 18)) -buckets $((1 << 12)) >"$log" 2>&1 &
  pid=$!
  for _ in $(seq 1 100); do
    grep -q 'listening on' "$log" 2>/dev/null && return 0
    kill -0 "$pid" 2>/dev/null || fail "server died during startup"
    sleep 0.1
  done
  fail "server never printed its ready line"
}

# resp_cmd sends one RESP command over /dev/tcp and prints the first reply
# line (CR stripped) — enough of a client for PING/DBSIZE assertions.
resp_cmd() {
  local host="${addr%:*}" port="${addr##*:}" req="" reply
  req="*$#\r\n"
  for a in "$@"; do req+="\$${#a}\r\n${a}\r\n"; done
  exec 3<>"/dev/tcp/$host/$port"
  printf '%b' "$req" >&3
  IFS= read -r -t 5 reply <&3 || fail "no reply to $1"
  exec 3>&- 3<&-
  printf '%s' "${reply%$'\r'}"
}

start_server

# Load burst through the real harness: fills $keys keys, then runs every
# mix against the external server over real sockets.
"$dir/onefile-bench" -fig kv -kv-addr "$addr" -quick -dur 200ms -keys "$keys" \
  || fail "bench harness burst failed"

[ "$(resp_cmd PING)" = "+PONG" ] || fail "PING did not answer PONG"
[ "$(resp_cmd DBSIZE)" = ":$keys" ] || fail "DBSIZE $(resp_cmd DBSIZE) != :$keys after load"

metrics=$(curl -fs "http://$maddr/metrics") || fail "metrics endpoint unreachable"

require_nonzero() {
  local fam="$1" line val
  line=$(grep -E "^${fam} " <<<"$metrics" | head -1)
  [ -n "$line" ] || fail "missing metric family ${fam}"
  val=${line##* }
  awk -v v="$val" 'BEGIN { exit (v+0 > 0 ? 0 : 1) }' \
    || fail "metric family ${fam} is zero after load: ${line}"
}

# Service counters and the engine underneath must both be moving: RESP
# commands served, connections accepted, latency samples recorded, and the
# persistent engine's commits and write-backs behind them.
for fam in \
  kv_cmd_get_total \
  kv_cmd_set_total \
  kv_connections_total \
  kv_get_latency_count \
  kv_set_latency_count \
  onefile_of_lf_ptm_commits_total \
  onefile_of_lf_ptm_batches_total \
  onefile_of_lf_ptm_pwb_total; do
  require_nonzero "$fam"
done

# Graceful drain: SIGTERM must flush pending work, close the device with a
# clean superblock, and exit 0.
kill -TERM "$pid"
if ! wait "$pid"; then fail "server exited non-zero on SIGTERM"; fi
pid=""
grep -q 'clean shutdown' "$log" || fail "no clean-shutdown line after SIGTERM"

# Clean reopen: the same file must attach without recovery drama and still
# hold every loaded key.
start_server
[ "$(resp_cmd DBSIZE)" = ":$keys" ] || fail "reopen lost keys: DBSIZE $(resp_cmd DBSIZE) != :$keys"
[ "$(resp_cmd GET k0000000)" = "\$16" ] || fail "reopen lost k0000000"
kill -TERM "$pid"
wait "$pid" || fail "second shutdown exited non-zero"
pid=""

echo "kv-smoke: OK ($keys keys survived drain + reopen)"
