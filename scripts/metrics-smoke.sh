#!/usr/bin/env bash
# Metrics-exposition smoke test: boots the kvstore example as a scrapeable
# service, lets its scripted workload run, scrapes /metrics, /debug/vars
# and /debug/flightrecorder, and asserts the key metric families are
# present and non-zero. Run from the repository root; CI's metrics-smoke
# job runs exactly this script.
set -euo pipefail

addr="${1:-127.0.0.1:18090}"

go build -o /tmp/kvstore-smoke ./examples/kvstore
/tmp/kvstore-smoke -serve "$addr" &
pid=$!
trap 'kill "$pid" 2>/dev/null || true' EXIT

# Wait for the endpoint, then let the background workload accumulate.
for _ in $(seq 1 50); do
  if curl -fs "http://$addr/metrics" >/dev/null 2>&1; then break; fi
  sleep 0.2
done
sleep 2

metrics=$(curl -fs "http://$addr/metrics")
vars=$(curl -fs "http://$addr/debug/vars")
rec=$(curl -fs "http://$addr/debug/flightrecorder")

fail() { echo "metrics-smoke: $1" >&2; exit 1; }

require_nonzero() {
  local fam="$1" line val
  line=$(grep -E "^${fam} " <<<"$metrics" | head -1)
  [ -n "$line" ] || fail "missing metric family ${fam}"
  val=${line##* }
  awk -v v="$val" 'BEGIN { exit (v+0 > 0 ? 0 : 1) }' \
    || fail "metric family ${fam} is zero after workload: ${line}"
}

# The kvstore service runs the persistent lock-free engine: direct updates
# (puts), read transactions (gets), combined batches, and the device's
# persistence counters must all be moving.
for fam in \
  onefile_of_lf_ptm_commits_total \
  onefile_of_lf_ptm_read_commits_total \
  onefile_of_lf_ptm_batches_total \
  onefile_of_lf_ptm_batched_ops_total \
  onefile_of_lf_ptm_pwb_total \
  onefile_of_lf_ptm_pdrain_total \
  onefile_of_lf_ptm_update_latency_ns_count \
  onefile_of_lf_ptm_read_latency_ns_count \
  onefile_of_lf_ptm_batch_op_latency_ns_count \
  onefile_of_lf_ptm_batch_size_ops_count; do
  require_nonzero "$fam"
done

grep -q '# TYPE onefile_of_lf_ptm_update_latency_ns histogram' <<<"$metrics" \
  || fail "/metrics missing histogram TYPE line"
grep -q '"onefile_of_lf_ptm_update_latency_ns"' <<<"$vars" \
  || fail "/debug/vars missing latency histogram summary"
grep -q '"p99"' <<<"$vars" \
  || fail "/debug/vars histogram summary has no percentiles"
grep -q '"kind": "commit"' <<<"$rec" \
  || fail "/debug/flightrecorder has no commit events"

echo "metrics-smoke: OK ($(grep -c '^# TYPE' <<<"$metrics") metric families)"
